//! The replication chaos harness (ISSUE 7 tentpole proof).
//!
//! A leader [`DurableMultiStore`] with an attached [`LogShipper`] and
//! K followers run under randomized fault schedules: network
//! partitions, torn mid-frame writes, delivery delays, shed queues
//! (deliberately tiny subscriber buffers), leader checkpoints that
//! compact cursors away mid-flight, and follower kill-9 (the follower
//! is dropped on the floor and reopened from its last saved state
//! directory). Every schedule is driven as a deterministic
//! single-threaded co-op pump — no sleeps, no real sockets — so a seed
//! reproduces a failure exactly.
//!
//! After quiescence ([`LogShipper::finish`] plus a fault-free final
//! reconnect for every follower), the harness asserts the headline
//! property from the issue: every follower's cursor reaches the
//! leader's epoch and its **entire** derived state — every relation,
//! every CFD violation set, the CIND violation set, and each
//! materialized view's contents and view-side violations — equals the
//! leader's, and no acknowledged commit was skipped or double-applied
//! (each applied frame advanced the cursor by exactly one).
//!
//! Satellite regressions ride along: frame idempotence under raw
//! re-delivery, shed-on-lag (gap + rewind, never writer stall),
//! pin-horizon-aware log retention with the cursor-below-checkpoint
//! fallback, and a threaded blocking-path run through
//! [`follow_until_end`].

use cfd_cind::delta::CindViolation;
use cfd_cind::Cind;
use cfd_clean::replica::{decode_ship_msg, encode_ship_msg, SHIP_PROTO_VERSION};
use cfd_clean::{
    follow_until_end, ChanShipIo, DurableMultiStore, DurableOptions, FaultShipIo, Follower,
    FollowerError, FsyncPolicy, LogShipper, MultiStore, RelationSpec, RetryPolicy, ShipIo, ShipMsg,
    ShipOptions, ShipServerConn, UpdateBatch, ViewSpec, Violation,
};
use cfd_datagen::cfd_gen::random_value;
use cfd_datagen::{
    gen_cfds, gen_cinds, gen_schema, gen_spc_view, CfdGenConfig, CindGenConfig, SchemaGenConfig,
    ViewGenConfig,
};
use cfd_relalg::instance::{Relation, Tuple};
use cfd_relalg::schema::{Catalog, RelId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------------
// Workload generation (the durable_props idiom)
// ---------------------------------------------------------------------

struct Workload {
    catalog: Catalog,
    specs: Vec<RelationSpec>,
    cinds: Vec<Cind>,
    view: ViewSpec,
}

fn make_workload(seed: u64) -> (Workload, StdRng) {
    let n_rel = 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let catalog = gen_schema(
        &SchemaGenConfig {
            relations: n_rel,
            min_arity: 2,
            max_arity: 3,
            finite_ratio: 0.0,
        },
        &mut rng,
    );
    let sigma = gen_cfds(
        &catalog,
        &CfdGenConfig {
            count: n_rel * 2,
            lhs_max: 2,
            var_pct: 0.5,
            const_range: 4,
            ensure_consistent: true,
            allow_unconditional_constants: true,
        },
        &mut rng,
    );
    let cinds = gen_cinds(
        &catalog,
        &CindGenConfig {
            count: 2,
            max_cols: 2,
            cond_pct: 0.3,
            pat_pct: 0.3,
            const_range: 4,
        },
        &mut rng,
    );
    let query = gen_spc_view(
        &catalog,
        &ViewGenConfig {
            y: 4,
            f: rng.gen_range(1..4),
            ec: rng.gen_range(2..=3.min(n_rel + 1)),
            const_range: 4,
        },
        &mut rng,
    );
    let mut view = ViewSpec::new("V", query.clone());
    if query.output.len() >= 2 {
        view.sigma
            .push(cfd_model::Cfd::fd(&[0], 1).expect("plain FD"));
    }
    let specs = catalog
        .relations()
        .map(|(rel, schema)| {
            let base: Relation = (0..rng.gen_range(0..6))
                .map(|_| random_tuple(&catalog, rel, &mut rng))
                .collect();
            RelationSpec::new(
                schema.name.clone(),
                sigma
                    .iter()
                    .filter(|s| s.rel == rel)
                    .map(|s| s.cfd.clone())
                    .collect(),
                base,
            )
        })
        .collect();
    (
        Workload {
            catalog,
            specs,
            cinds,
            view,
        },
        rng,
    )
}

fn random_tuple(catalog: &Catalog, rel: RelId, rng: &mut StdRng) -> Tuple {
    catalog
        .schema(rel)
        .attributes
        .iter()
        .map(|a| random_value(&a.domain, 4, rng))
        .collect()
}

fn random_batch(
    catalog: &Catalog,
    rel: RelId,
    store: &MultiStore,
    rng: &mut StdRng,
) -> UpdateBatch {
    let mut upd = UpdateBatch::default();
    for _ in 0..rng.gen_range(1..5) {
        upd.inserts.push(random_tuple(catalog, rel, rng));
    }
    let residents: Vec<Tuple> = store.relation(rel).tuples().cloned().collect();
    for _ in 0..rng.gen_range(0..3) {
        if rng.gen_bool(0.5) && !residents.is_empty() {
            upd.deletes
                .push(residents[rng.gen_range(0..residents.len())].clone());
        } else {
            upd.deletes.push(random_tuple(catalog, rel, rng));
        }
    }
    upd
}

/// Everything a follower must reproduce, canonicalized by sort so
/// insertion order (which legitimately differs between a store grown
/// commit by commit and one rebuilt from a shipped checkpoint) never
/// matters.
#[derive(Clone, Debug, PartialEq)]
struct StateSnap {
    epoch: u64,
    rels: Vec<Relation>,
    cfd: Vec<Vec<Violation>>,
    cind: Vec<CindViolation>,
    view: Vec<(Relation, Vec<Violation>, Vec<CindViolation>)>,
}

fn capture(store: &MultiStore) -> StateSnap {
    let mut cfd = Vec::new();
    let mut rels = Vec::new();
    for i in 0..store.rel_count() {
        rels.push(store.relation(RelId(i)));
        let mut v = store.cfd_violations(RelId(i));
        v.sort();
        cfd.push(v);
    }
    let mut cind = store.cind_violations();
    cind.sort();
    let mut view = Vec::new();
    for i in 0..store.view_count() {
        let mut vc = store.view_cfd_violations(i);
        vc.sort();
        let mut vi = store.view_cind_violations(i);
        vi.sort();
        view.push((store.view_relation(i), vc, vi));
    }
    StateSnap {
        epoch: store.epoch(),
        rels,
        cfd,
        cind,
        view,
    }
}

fn fresh_dir(tag: &str, n: u64) -> PathBuf {
    let path = std::env::temp_dir().join(format!("cfdprop-chaos-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path).expect("create temp dir");
    path
}

fn durable_opts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Os,
        checkpoint_every: 0,
    }
}

fn open_leader(w: &Workload, dir: &Path, shards: usize) -> DurableMultiStore {
    DurableMultiStore::open(
        dir,
        w.specs.clone(),
        w.cinds.clone(),
        shards,
        vec![w.view.clone()],
        durable_opts(),
    )
    .expect("generated workload is well-formed")
    .0
}

fn fresh_follower(w: &Workload, shards: usize) -> Follower {
    Follower::new(
        w.specs.clone(),
        w.cinds.clone(),
        shards,
        vec![w.view.clone()],
    )
}

fn commit_random(w: &Workload, leader: &mut DurableMultiStore, rng: &mut StdRng) {
    let rel = RelId(rng.gen_range(0..w.specs.len()));
    let batch = random_batch(&w.catalog, rel, leader.store(), rng);
    leader.apply(rel, &batch).expect("leader commit");
}

/// Pump a clean (fault-free) server/follower pair until both go idle.
fn pump_to_idle(
    follower: &mut Follower,
    conn: &mut cfd_clean::replica::FollowerConn,
    server: &mut ShipServerConn,
) {
    loop {
        let s = server.pump().expect("clean server link");
        let f = follower.pump(conn).expect("clean follower link");
        if !s && f == 0 {
            return;
        }
    }
}

// ---------------------------------------------------------------------
// The co-op rig: one follower, its connection, and its server end
// ---------------------------------------------------------------------

struct Rig {
    follower: Follower,
    conn: Option<cfd_clean::replica::FollowerConn>,
    server: Option<ShipServerConn>,
    state_dir: PathBuf,
    saved: bool,
    clean_end: bool,
    faults_seen: usize,
    kills: usize,
    /// Steps this rig refuses to pump — a stalled consumer, the
    /// shed-on-lag trigger.
    stalled: u32,
}

impl Rig {
    fn new(w: &Workload, shards: usize, state_dir: PathBuf) -> Rig {
        Rig {
            follower: fresh_follower(w, shards),
            conn: None,
            server: None,
            state_dir,
            saved: false,
            clean_end: false,
            faults_seen: 0,
            kills: 0,
            stalled: 0,
        }
    }

    /// Open a connection pair, wrapping each side in random faults
    /// (`faulty = false` forces a clean link for the final drain).
    fn connect(&mut self, shipper: &LogShipper, rng: &mut StdRng, faulty: bool) {
        let (cio, sio) = ChanShipIo::pair();
        let client: Box<dyn ShipIo> = if faulty && rng.gen_bool(0.5) {
            let mut f = FaultShipIo::new(Box::new(cio));
            if rng.gen_bool(0.5) {
                f = f.cut_recv_at(rng.gen_range(0..12));
            }
            if rng.gen_bool(0.4) {
                f = f.delay(rng.gen_range(0..4));
            }
            Box::new(f)
        } else {
            Box::new(cio)
        };
        let server: Box<dyn ShipIo> = if faulty && rng.gen_bool(0.5) {
            // Torn mid-frame writes on the serving side: the follower
            // buffers a prefix of a message and must discard it.
            Box::new(FaultShipIo::new(Box::new(sio)).cut_send_at(rng.gen_range(8..4096)))
        } else {
            Box::new(sio)
        };
        self.server = Some(ShipServerConn::new(server, shipper.clone()));
        match self.follower.begin(client) {
            Ok(conn) => self.conn = Some(conn),
            Err(_) => {
                // The hello itself hit a fault; retry next round.
                self.conn = None;
                self.server = None;
                self.faults_seen += 1;
            }
        }
        self.clean_end = false;
    }

    /// Pump both ends once. On any fault, tear the session down (both
    /// ends) so the driver reconnects.
    fn pump(&mut self) {
        if let Some(server) = &mut self.server {
            if server.pump().is_err() {
                self.server = None;
                self.faults_seen += 1;
            }
        }
        if let Some(conn) = &mut self.conn {
            match self.follower.pump(conn) {
                Ok(_) => {
                    if conn.is_done() {
                        self.clean_end = true;
                        self.conn = None;
                        self.server = None;
                    }
                }
                Err(_) => {
                    self.conn = None;
                    self.server = None;
                    self.faults_seen += 1;
                }
            }
        }
    }

    /// kill-9: the in-memory follower is dropped on the floor and a new
    /// process-equivalent reopens from the last saved state directory
    /// (or from nothing, if it never saved).
    fn kill_minus_nine(&mut self, w: &Workload, shards: usize) {
        let reopened = Follower::open(
            w.specs.clone(),
            w.cinds.clone(),
            shards,
            vec![w.view.clone()],
            &self.state_dir,
        )
        .expect("saved follower state reopens");
        if self.saved {
            assert!(
                reopened.store().is_some(),
                "saved state must survive kill-9"
            );
        }
        self.follower = reopened;
        self.conn = None;
        self.server = None;
        self.kills += 1;
        self.clean_end = false;
    }
}

// ---------------------------------------------------------------------
// The headline chaos property
// ---------------------------------------------------------------------

/// One randomized schedule: random interleaving of leader commits,
/// leader checkpoints, rig pumps, fault-induced reconnects, follower
/// state saves, and kill-9s. Returns the per-rig (faults, kills,
/// gaps + sheds) tallies for the coverage assertion.
fn run_schedule(seed: u64, k: usize, shards: usize, run: u64) -> (usize, usize, u64) {
    let (w, mut rng) = make_workload(seed);
    let leader_dir = fresh_dir("leader", run);
    let mut leader = open_leader(&w, &leader_dir, shards);
    // Tiny queues + a short retained window: sheds and compacted-away
    // cursors happen constantly, not as edge cases.
    let shipper = leader.attach_shipper(ShipOptions {
        queue_cap: 4,
        max_retained: 64,
    });
    let mut rigs: Vec<Rig> = (0..k)
        .map(|i| {
            let mut rig = Rig::new(&w, shards, fresh_dir("fol", run * 8 + i as u64));
            rig.connect(&shipper, &mut rng, true);
            rig
        })
        .collect();

    let total_batches = 24;
    let mut applied = 0;
    let mut steps = 0;
    while applied < total_batches || steps < 200 {
        steps += 1;
        if steps > 5000 {
            break;
        }
        match rng.gen_range(0..10u32) {
            0..=3 if applied < total_batches => {
                // Bursts outrun the tiny subscriber queues of stalled
                // rigs, forcing sheds.
                for _ in 0..rng
                    .gen_range(1..=3u32)
                    .min((total_batches - applied) as u32)
                {
                    commit_random(&w, &mut leader, &mut rng);
                    applied += 1;
                }
            }
            4 if rng.gen_bool(0.25) => {
                leader.checkpoint().expect("leader checkpoint");
            }
            _ => {}
        }
        for rig in &mut rigs {
            if rig.stalled > 0 {
                rig.stalled -= 1;
                continue;
            }
            if rng.gen_bool(0.08) {
                rig.stalled = rng.gen_range(5..20);
                continue;
            }
            for _ in 0..rng.gen_range(0..3u32) {
                rig.pump();
            }
            if rig.conn.is_none() && !rig.clean_end {
                if rng.gen_bool(0.2) && rig.follower.store().is_some() {
                    rig.follower.save_state(&rig.state_dir).expect("save state");
                    rig.saved = true;
                }
                if rng.gen_bool(0.15) {
                    rig.kill_minus_nine(&w, shards);
                }
                if rng.gen_bool(0.6) {
                    rig.connect(&shipper, &mut rng, true);
                }
            }
        }
    }
    assert_eq!(applied, total_batches, "seed {seed}: leader starved");

    // Quiescence: end the stream, give every rig a clean link, and
    // drain. Every follower must reach the leader's exact state.
    shipper.finish();
    let expected = capture(leader.store());
    for (i, rig) in rigs.iter_mut().enumerate() {
        let mut rounds = 0;
        while !rig.clean_end {
            if rig.conn.is_none() {
                rig.connect(&shipper, &mut rng, false);
            }
            rig.pump();
            rounds += 1;
            assert!(
                rounds < 10_000,
                "seed {seed} rig {i}: drain did not quiesce"
            );
        }
        let stats = rig.follower.stats();
        assert_eq!(
            rig.follower.cursor(),
            expected.epoch,
            "seed {seed} rig {i}: cursor short of the leader epoch"
        );
        assert_eq!(
            rig.follower.lag().frames_behind,
            0,
            "seed {seed} rig {i}: lag at rest"
        );
        let got = capture(rig.follower.store().expect("synced follower has a store"));
        assert_eq!(
            got, expected,
            "seed {seed} rig {i}: follower diverged from the leader \
             (stats: {stats:?})"
        );
    }
    let faults: usize = rigs.iter().map(|r| r.faults_seen).sum();
    let kills: usize = rigs.iter().map(|r| r.kills).sum();
    let gaps: u64 = rigs.iter().map(|r| r.follower.stats().gaps).sum();
    let _ = std::fs::remove_dir_all(&leader_dir);
    for rig in &rigs {
        let _ = std::fs::remove_dir_all(&rig.state_dir);
    }
    (faults, kills, gaps + shipper.shed_count())
}

/// The acceptance criterion: ≥ 100 randomized fault schedules across
/// K ∈ {1,3} followers and shards ∈ {1,4}, every follower converging
/// to the leader's exact CFD + CIND + view violation state at its
/// cursor epoch. The coverage tallies prove the schedules actually
/// exercised faults, kill-9s, and sheds — a chaos suite that never
/// injects chaos proves nothing.
#[test]
fn chaos_every_follower_converges_under_random_fault_schedules() {
    let mut schedules = 0u64;
    let (mut faults, mut kills, mut sheds) = (0usize, 0usize, 0u64);
    for seed in 0..25u64 {
        for k in [1usize, 3] {
            for shards in [1usize, 4] {
                let (f, ki, s) = run_schedule(seed, k, shards, schedules);
                faults += f;
                kills += ki;
                sheds += s;
                schedules += 1;
            }
        }
    }
    assert!(schedules >= 100, "only {schedules} schedules");
    assert!(faults >= 200, "only {faults} faults injected");
    assert!(kills >= 20, "only {kills} kill-9s exercised");
    assert!(sheds >= 20, "only {sheds} sheds/gaps exercised");
}

// ---------------------------------------------------------------------
// Focused regressions
// ---------------------------------------------------------------------

/// Frame idempotence by epoch: frames re-delivered over a live session
/// (exactly what a reconnect overlap or a duplicating leader produces)
/// are skipped, never double-applied — state and cursor unchanged,
/// every duplicate counted.
#[test]
fn redelivered_frames_are_skipped_never_double_applied() {
    let (w, mut rng) = make_workload(4242);
    let dir = fresh_dir("idem", 0);
    let mut leader = open_leader(&w, &dir, 1);
    let shipper = leader.attach_shipper(ShipOptions::default());

    let mut follower = fresh_follower(&w, 1);
    let (cio, sio) = ChanShipIo::pair();
    let mut server = ShipServerConn::new(Box::new(sio), shipper.clone());
    let mut conn = follower.begin(Box::new(cio)).unwrap();
    for _ in 0..6 {
        commit_random(&w, &mut leader, &mut rng);
    }
    pump_to_idle(&mut follower, &mut conn, &mut server);
    assert_eq!(follower.cursor(), leader.store().epoch());
    let before = capture(follower.store().unwrap());
    let applied_before = follower.stats().frames_applied;

    // Re-deliver every retained frame, twice, over a fresh raw link
    // that grants tail-replay and then duplicates the stream.
    let retained = shipper_frames(&shipper);
    assert_eq!(retained.len(), 6, "all six frames retained");
    let (mut evil_leader, rio) = ChanShipIo::pair();
    let mut bytes = Vec::new();
    encode_ship_msg(
        &mut bytes,
        &ShipMsg::Tail {
            incarnation: shipper.incarnation(),
            leader_epoch: shipper.leader_epoch(),
        },
    );
    for frame in retained.iter().chain(retained.iter()) {
        encode_ship_msg(&mut bytes, &ShipMsg::Frame(frame.clone()));
    }
    evil_leader.send(&bytes).unwrap();
    let mut reconn = follower.begin(Box::new(rio)).unwrap();
    follower.pump(&mut reconn).unwrap();

    assert_eq!(capture(follower.store().unwrap()), before);
    assert_eq!(follower.stats().frames_applied, applied_before);
    assert_eq!(
        follower.stats().duplicates_skipped,
        2 * retained.len() as u64,
        "every re-delivered frame counted as a skipped duplicate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Read the retained frames back off a throwaway snapshot-mode
/// catch-up connection.
fn shipper_frames(shipper: &LogShipper) -> Vec<Vec<u8>> {
    let (mut cio, sio) = ChanShipIo::pair();
    let mut server = ShipServerConn::new(Box::new(sio), shipper.clone());
    let mut hello = Vec::new();
    encode_ship_msg(
        &mut hello,
        &ShipMsg::Hello {
            proto: SHIP_PROTO_VERSION,
            incarnation: 0,
            cursor: 0,
        },
    );
    cio.send(&hello).unwrap();
    while server.pump().unwrap() {}
    let mut buf = Vec::new();
    while let Some(chunk) = cio.try_recv().unwrap() {
        buf.extend_from_slice(&chunk);
    }
    let mut frames = Vec::new();
    let mut at = 0;
    while let Some((msg, used)) = decode_ship_msg(&buf[at..]).unwrap() {
        at += used;
        if let ShipMsg::Frame(bytes) = msg {
            frames.push(bytes);
        }
    }
    frames
}

/// Fully sync a fresh follower against the shipper over a clean link.
fn synced_follower(w: &Workload, shipper: &LogShipper, shards: usize) -> Follower {
    let mut follower = fresh_follower(w, shards);
    sync_once(&mut follower, shipper);
    follower
}

fn sync_once(follower: &mut Follower, shipper: &LogShipper) {
    let (cio, sio) = ChanShipIo::pair();
    let mut server = ShipServerConn::new(Box::new(sio), shipper.clone());
    let mut conn = follower.begin(Box::new(cio)).unwrap();
    pump_to_idle(follower, &mut conn, &mut server);
}

/// Satellite 1: a registered follower cursor pins on-disk log
/// retention — `checkpoint()` must not truncate segments the cursor
/// still needs — a live cursor above the retained base resumes by
/// tail-replay (no snapshot rebuild), and a cursor compacted away by a
/// later checkpoint falls back to checkpoint+replay. Exact convergence
/// either way.
#[test]
fn cursor_pins_log_retention_and_compacted_cursor_falls_back_to_snapshot() {
    let (w, mut rng) = make_workload(4242);
    let dir = fresh_dir("retain", 0);
    let mut leader = open_leader(&w, &dir, 1);
    let shipper = leader.attach_shipper(ShipOptions::default());

    let seg_starts = |dir: &Path| -> Vec<u64> {
        let mut segs: Vec<u64> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| {
                let name = e.unwrap().file_name().into_string().unwrap();
                name.strip_prefix("wal-")?
                    .strip_suffix(".log")?
                    .parse()
                    .ok()
            })
            .collect();
        segs.sort_unstable();
        segs
    };

    // Commit, pin a cursor, commit past a checkpoint.
    for _ in 0..4 {
        commit_random(&w, &mut leader, &mut rng);
    }
    let pinned = leader.store().epoch();
    let cursor = shipper.register_cursor(pinned);
    assert_eq!(leader.retain_floor(), Some(pinned));
    let old_segs = seg_starts(&dir);
    for _ in 0..4 {
        commit_random(&w, &mut leader, &mut rng);
    }
    leader.checkpoint().unwrap();
    let kept = seg_starts(&dir);
    assert!(
        kept.iter().any(|s| old_segs.contains(s) && *s <= pinned),
        "checkpoint truncated a segment the cursor at {pinned} needs: \
         kept {kept:?}, had {old_segs:?}"
    );

    // A follower synced to the checkpoint tail-replays later commits:
    // its cursor is within the retained window, so no snapshot rebuild.
    let mut follower = synced_follower(&w, &shipper, 1);
    assert_eq!(follower.stats().snapshots_loaded, 1, "initial sync only");
    for _ in 0..2 {
        commit_random(&w, &mut leader, &mut rng);
    }
    sync_once(&mut follower, &shipper);
    assert_eq!(follower.cursor(), leader.store().epoch());
    assert_eq!(
        follower.stats().snapshots_loaded,
        1,
        "a live cursor must resume by tail-replay, not rebuild"
    );
    assert_eq!(capture(follower.store().unwrap()), capture(leader.store()));

    // Release the pin: the next checkpoint reclaims the old segments …
    shipper.release_cursor(cursor);
    assert_eq!(leader.retain_floor(), None);
    for _ in 0..2 {
        commit_random(&w, &mut leader, &mut rng);
    }
    leader.checkpoint().unwrap();
    assert!(
        seg_starts(&dir).iter().all(|s| !old_segs.contains(s)),
        "released pin still blocks truncation"
    );

    // … and the follower's cursor, now below the compacted horizon,
    // falls back to checkpoint+replay and still converges exactly.
    sync_once(&mut follower, &shipper);
    assert_eq!(follower.cursor(), leader.store().epoch());
    assert_eq!(
        follower.stats().snapshots_loaded,
        2,
        "compacted-away cursor must fall back to checkpoint+replay"
    );
    assert_eq!(capture(follower.store().unwrap()), capture(leader.store()));

    // The manual pin hook composes with cursor pins.
    leader.retain_from(Some(1));
    assert_eq!(leader.retain_floor(), Some(1));
    leader.retain_from(None);
    assert_eq!(leader.retain_floor(), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Shed-on-lag: a follower that stops pumping while the leader commits
/// past its queue capacity is shed — gap event, cursor rewind via
/// renegotiation — and the leader is never stalled (every `apply`
/// returns). After reconnecting, the laggard converges exactly.
#[test]
fn slow_follower_is_shed_with_a_gap_and_converges_after_rewind() {
    let (w, mut rng) = make_workload(4242);
    let dir = fresh_dir("shed", 0);
    let mut leader = open_leader(&w, &dir, 1);
    let shipper = leader.attach_shipper(ShipOptions {
        queue_cap: 2,
        max_retained: 4096,
    });
    let mut follower = fresh_follower(&w, 1);
    let (cio, sio) = ChanShipIo::pair();
    let mut server = ShipServerConn::new(Box::new(sio), shipper.clone());
    let mut conn = follower.begin(Box::new(cio)).unwrap();
    pump_to_idle(&mut follower, &mut conn, &mut server);

    // The follower goes to sleep; the leader commits far past the
    // queue capacity. No apply may block or fail.
    for _ in 0..12 {
        commit_random(&w, &mut leader, &mut rng);
    }
    assert!(shipper.shed_count() >= 1, "laggard was never shed");

    // Waking up, the follower sees the shed as a typed error …
    let err = loop {
        let _ = server.pump();
        match follower.pump(&mut conn) {
            Ok(_) => continue,
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, FollowerError::Shed { through } if through <= leader.store().epoch()),
        "expected a shed, got {err}"
    );
    assert_eq!(follower.stats().gaps, 1);
    assert!(follower.cursor() < leader.store().epoch());

    // … and a plain reconnect (cursor renegotiation) converges.
    sync_once(&mut follower, &shipper);
    assert_eq!(follower.cursor(), leader.store().epoch());
    assert_eq!(capture(follower.store().unwrap()), capture(leader.store()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// The blocking path end to end on real threads: `follow_until_end`
/// (with jittered backoff) rides out two links that tear mid-stream
/// before a clean one, and the follower still converges exactly.
#[test]
fn follow_until_end_survives_faulty_connections_on_real_threads() {
    let (w, mut rng) = make_workload(4242);
    let dir = fresh_dir("threads", 0);
    let mut leader = open_leader(&w, &dir, 1);
    for _ in 0..6 {
        commit_random(&w, &mut leader, &mut rng);
    }
    let shipper = leader.attach_shipper(ShipOptions::default());
    for _ in 0..6 {
        commit_random(&w, &mut leader, &mut rng);
    }
    let expected = capture(leader.store());
    shipper.finish();

    let mut follower = fresh_follower(&w, 1);
    let mut attempts: usize = 0;
    let ship = shipper.clone();
    follow_until_end(
        &mut follower,
        move || {
            attempts += 1;
            let (cio, sio) = ChanShipIo::pair();
            let io: Box<dyn ShipIo> = if attempts <= 2 {
                // The first two links die mid-stream.
                Box::new(FaultShipIo::new(Box::new(sio)).cut_send_at(40 * attempts))
            } else {
                Box::new(sio)
            };
            let server = ShipServerConn::new(io, ship.clone());
            std::thread::spawn(move || {
                let _ = server.run();
            });
            let client: Box<dyn ShipIo> = Box::new(cio);
            Ok(client)
        },
        &RetryPolicy {
            base_ms: 1,
            max_ms: 5,
            jitter_pct: 50,
            max_retries: 8,
        },
        99,
    )
    .expect("retry loop rides out the faulty links");
    assert_eq!(capture(follower.store().unwrap()), expected);
    assert!(follower.stats().connects >= 3, "faulty links were retried");
    let _ = std::fs::remove_dir_all(&dir);
}
