//! Evaluation of SPC and SPCU queries over database instances.
//!
//! This is the semantic ground truth used by the test suite: a dependency φ
//! is propagated (`Σ |=V φ`) iff `V(D) |= φ` for *every* `D |= Σ`; the
//! decision procedures are cross-validated against actual evaluation on
//! witness databases.

use crate::instance::{Database, Relation, Tuple};
use crate::query::{ColRef, SelAtom, SpcQuery, SpcuQuery};
use crate::schema::Catalog;
use crate::value::Value;

/// Evaluate an SPC query on `db`, producing the view instance (set
/// semantics).
pub fn eval_spc(q: &SpcQuery, catalog: &Catalog, db: &Database) -> Relation {
    let mut out = Relation::new();
    // Materialize the atom instances as slices of tuples.
    let atom_tuples: Vec<Vec<&Tuple>> = q
        .atoms
        .iter()
        .map(|r| db.relation(*r).tuples().collect())
        .collect();
    // Guard: an empty atom relation makes the whole product empty.
    if atom_tuples.iter().any(|ts| ts.is_empty()) && !q.atoms.is_empty() {
        return out;
    }
    let _ = catalog; // atoms are positionally resolved; catalog kept for symmetry
    let n = q.atoms.len();
    let mut idx = vec![0usize; n];
    loop {
        // Current combination of tuples.
        let combo: Vec<&Tuple> = (0..n).map(|j| atom_tuples[j][idx[j]]).collect();
        if selection_holds(&q.selection, &combo) {
            let row: Tuple = q
                .output
                .iter()
                .map(|o| match o.src {
                    ColRef::Prod(c) => combo[c.atom][c.attr].clone(),
                    ColRef::Const(k) => q.constants[k].value.clone(),
                })
                .collect();
            out.insert(row);
        }
        // Advance the odometer; with n == 0 run the single empty combination
        // once (a pure constant relation yields exactly one tuple).
        if n == 0 {
            break;
        }
        let mut j = n;
        loop {
            if j == 0 {
                return out;
            }
            j -= 1;
            idx[j] += 1;
            if idx[j] < atom_tuples[j].len() {
                break;
            }
            idx[j] = 0;
        }
    }
    out
}

fn selection_holds(selection: &[SelAtom], combo: &[&Tuple]) -> bool {
    selection.iter().all(|s| match s {
        SelAtom::Eq(a, b) => combo[a.atom][a.attr] == combo[b.atom][b.attr],
        SelAtom::EqConst(a, v) => &combo[a.atom][a.attr] == v,
    })
}

/// Evaluate an SPCU query on `db` (union of the branch results).
pub fn eval_spcu(q: &SpcuQuery, catalog: &Catalog, db: &Database) -> Relation {
    let mut out = Relation::new();
    for b in &q.branches {
        for t in eval_spc(b, catalog, db).tuples() {
            out.insert(t.clone());
        }
    }
    out
}

/// Helper for tests/examples: collect a relation into sorted `Vec<Tuple>`.
pub fn sorted_tuples(r: &Relation) -> Vec<Tuple> {
    r.tuples().cloned().collect()
}

/// Helper for constructing tuples out of displayable values.
pub fn row(values: &[Value]) -> Tuple {
    values.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::DomainKind;
    use crate::query::{RaCond, RaExpr};
    use crate::schema::{Attribute, RelId, RelationSchema};

    fn setup() -> (Catalog, RelId, RelId) {
        let mut c = Catalog::new();
        let r1 = c
            .add(
                RelationSchema::new(
                    "R1",
                    vec![
                        Attribute::new("A", DomainKind::Int),
                        Attribute::new("B", DomainKind::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let r2 = c
            .add(
                RelationSchema::new(
                    "R2",
                    vec![
                        Attribute::new("C", DomainKind::Int),
                        Attribute::new("D", DomainKind::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        (c, r1, r2)
    }

    #[test]
    fn select_project_evaluates() {
        let (c, r1, _) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(5), Value::int(10)]);
        db.insert(r1, vec![Value::int(6), Value::int(20)]);
        let v = RaExpr::rel("R1")
            .select(vec![RaCond::EqConst("A".into(), Value::int(5))])
            .project(&["B"])
            .normalize(&c)
            .unwrap();
        let out = eval_spcu(&v, &c, &db);
        assert_eq!(sorted_tuples(&out), vec![vec![Value::int(10)]]);
    }

    #[test]
    fn product_with_join_condition() {
        let (c, r1, r2) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(1), Value::int(2)]);
        db.insert(r1, vec![Value::int(3), Value::int(4)]);
        db.insert(r2, vec![Value::int(1), Value::int(9)]);
        let v = RaExpr::rel("R1")
            .product(RaExpr::rel("R2"))
            .select(vec![RaCond::Eq("A".into(), "C".into())])
            .project(&["A", "D"])
            .normalize(&c)
            .unwrap();
        let out = eval_spcu(&v, &c, &db);
        assert_eq!(
            sorted_tuples(&out),
            vec![vec![Value::int(1), Value::int(9)]]
        );
    }

    #[test]
    fn constant_column_appended() {
        let (c, r1, _) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(1), Value::int(2)]);
        let v = RaExpr::rel("R1")
            .with_const("CC", Value::int(44), DomainKind::Int)
            .normalize(&c)
            .unwrap();
        let out = eval_spcu(&v, &c, &db);
        assert_eq!(
            sorted_tuples(&out),
            vec![vec![Value::int(1), Value::int(2), Value::int(44)]]
        );
    }

    #[test]
    fn pure_constant_relation_yields_one_tuple() {
        let (c, _, _) = setup();
        let db = Database::empty(&c);
        let v = RaExpr::ConstRel(vec![("X".into(), Value::int(7), DomainKind::Int)])
            .normalize(&c)
            .unwrap();
        let out = eval_spcu(&v, &c, &db);
        assert_eq!(sorted_tuples(&out), vec![vec![Value::int(7)]]);
    }

    #[test]
    fn union_dedups() {
        let (c, r1, _) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(1), Value::int(2)]);
        let v = RaExpr::rel("R1")
            .union(RaExpr::rel("R1"))
            .normalize(&c)
            .unwrap();
        let out = eval_spcu(&v, &c, &db);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn empty_query_evaluates_empty() {
        let (c, r1, _) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(1), Value::int(2)]);
        let v = RaExpr::rel("R1")
            .with_const("CC", Value::int(44), DomainKind::Int)
            .select(vec![RaCond::EqConst("CC".into(), Value::int(31))])
            .normalize(&c)
            .unwrap();
        assert!(eval_spcu(&v, &c, &db).is_empty());
    }

    #[test]
    fn empty_atom_relation_gives_empty_view() {
        let (c, _, _) = setup();
        let db = Database::empty(&c);
        let v = RaExpr::rel("R1").normalize(&c).unwrap();
        assert!(eval_spcu(&v, &c, &db).is_empty());
    }

    #[test]
    fn projection_dedups() {
        let (c, r1, _) = setup();
        let mut db = Database::empty(&c);
        db.insert(r1, vec![Value::int(1), Value::int(2)]);
        db.insert(r1, vec![Value::int(1), Value::int(3)]);
        let v = RaExpr::rel("R1").project(&["A"]).normalize(&c).unwrap();
        assert_eq!(eval_spcu(&v, &c, &db).len(), 1);
    }
}
