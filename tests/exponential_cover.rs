//! Example 4.1 — the inherently exponential propagation-cover family.
//!
//! Schema R(A1..An, B1..Bn, C1..Cn, D) with Σ = {Ai → Ci, Bi → Ci,
//! C1...Cn → D}; the view projects away the Ci. Every cover of the
//! propagated FDs must contain all 2^n dependencies
//! {A1|B1} ... {An|Bn} → D (Fischer, Jou & Tsou [9]).
//!
//! This is the worst case that justifies RBR over the closure-based
//! textbook method — and the case where the paper's polynomial-time
//! *heuristic* (a bounded RBR returning a sound subset) earns its keep.

use cfd_model::{Cfd, SourceCfd};
use cfd_propagation::cover::RbrOptions;
use cfd_propagation::{prop_cfd_spc, CoverOptions};
use cfd_relalg::query::SpcQuery;
use cfd_relalg::query::{ColRef, OutputCol, ProdCol};
use cfd_relalg::schema::{Attribute, Catalog, RelId, RelationSchema};
use cfd_relalg::DomainKind;

/// Attribute layout: Ai = i, Bi = n + i, Ci = 2n + i, D = 3n.
struct Family {
    catalog: Catalog,
    rel: RelId,
    sigma: Vec<SourceCfd>,
    view: SpcQuery,
    n: usize,
}

fn family(n: usize) -> Family {
    let mut attrs = Vec::new();
    for i in 0..n {
        attrs.push(Attribute::new(format!("A{i}"), DomainKind::Int));
    }
    for i in 0..n {
        attrs.push(Attribute::new(format!("B{i}"), DomainKind::Int));
    }
    for i in 0..n {
        attrs.push(Attribute::new(format!("C{i}"), DomainKind::Int));
    }
    attrs.push(Attribute::new("D", DomainKind::Int));
    let mut catalog = Catalog::new();
    let rel = catalog
        .add(RelationSchema::new("R", attrs).unwrap())
        .unwrap();

    let mut sigma = Vec::new();
    for i in 0..n {
        sigma.push(SourceCfd::new(rel, Cfd::fd(&[i], 2 * n + i).unwrap()));
        sigma.push(SourceCfd::new(rel, Cfd::fd(&[n + i], 2 * n + i).unwrap()));
    }
    let cs: Vec<usize> = (0..n).map(|i| 2 * n + i).collect();
    sigma.push(SourceCfd::new(rel, Cfd::fd(&cs, 3 * n).unwrap()));

    // Project onto the Ai, Bi and D (drop the Ci).
    let keep: Vec<usize> = (0..n).chain(n..2 * n).chain([3 * n]).collect();
    let view = SpcQuery {
        atoms: vec![rel],
        constants: vec![],
        selection: vec![],
        output: keep
            .iter()
            .map(|&k| OutputCol {
                name: catalog.schema(rel).attributes[k].name.clone(),
                src: ColRef::Prod(ProdCol::new(0, k)),
            })
            .collect(),
    };
    Family {
        catalog,
        rel,
        sigma,
        view,
        n,
    }
}

/// Count the cover CFDs of the form η1...ηn → D.
fn d_rules(cover: &[Cfd], n: usize) -> usize {
    let d_pos = 2 * n; // D is the last output column
    cover
        .iter()
        .filter(|c| c.rhs_attr() == d_pos && c.lhs().len() == n)
        .count()
}

#[test]
fn cover_blows_up_exponentially() {
    for n in 1..=4usize {
        let f = family(n);
        let cover = prop_cfd_spc(&f.catalog, &f.sigma, &f.view, &CoverOptions::default()).unwrap();
        assert!(cover.complete);
        assert_eq!(
            d_rules(&cover.cfds, n),
            1 << n,
            "n = {n}: expected 2^n = {} D-rules in {:?}",
            1 << n,
            cover.cfds
        );
    }
}

#[test]
fn every_choice_function_rule_present() {
    let n = 3;
    let f = family(n);
    let cover = prop_cfd_spc(&f.catalog, &f.sigma, &f.view, &CoverOptions::default()).unwrap();
    // view positions: Ai = i, Bi = n + i, D = 2n
    for mask in 0..(1usize << n) {
        let lhs: Vec<usize> = (0..n)
            .map(|i| if mask >> i & 1 == 0 { i } else { n + i })
            .collect();
        let expect = Cfd::fd(&lhs, 2 * n).unwrap();
        assert!(
            cover.cfds.contains(&expect),
            "missing choice rule {expect} (mask {mask:b})"
        );
    }
}

#[test]
fn heuristic_bound_returns_sound_subset() {
    let n = 5;
    let f = family(n);
    let opts = CoverOptions {
        rbr: RbrOptions {
            max_size: Some(16),
            ..Default::default()
        },
        ..Default::default()
    };
    let bounded = prop_cfd_spc(&f.catalog, &f.sigma, &f.view, &opts).unwrap();
    assert!(!bounded.complete, "2^5 = 32 D-rules cannot fit in 16");
    // Soundness: everything returned is in the unbounded cover's closure.
    let full = prop_cfd_spc(&f.catalog, &f.sigma, &f.view, &CoverOptions::default()).unwrap();
    let domains: Vec<DomainKind> = f
        .view
        .view_schema(&f.catalog)
        .columns
        .into_iter()
        .map(|(_, d)| d)
        .collect();
    for c in &bounded.cfds {
        assert!(
            cfd_model::implication::implies(&full.cfds, c, &domains),
            "bounded cover emitted a non-propagated CFD: {c}"
        );
    }
}

#[test]
fn ai_to_ci_rules_do_not_survive_projection() {
    let f = family(3);
    let cover = prop_cfd_spc(&f.catalog, &f.sigma, &f.view, &CoverOptions::default()).unwrap();
    // No cover CFD may mention a dropped Ci — they are not view columns.
    // (All view positions are < 2n + 1; this asserts translation sanity:
    // every mentioned attr is a valid view position.)
    let width = 2 * f.n + 1;
    for c in &cover.cfds {
        assert!(
            c.max_attr() < width,
            "cover CFD mentions a dropped column: {c}"
        );
    }
    let _ = f.rel;
}
