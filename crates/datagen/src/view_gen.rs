//! The SPC view generator of §5: "given a source schema R and three numbers
//! |Y|, |F| and |Ec|, randomly produces an SPC view πY(σF(Ec)) such that Y
//! consists of |Y| projection attributes, F is a conjunction of |F| domain
//! constraints of the form A = B and A = 'a', and Ec is the Cartesian
//! product of |Ec| relations. Each constant a is randomly picked from a
//! fixed range [1, 100000] so that the domain constraints may interact with
//! each other."

use crate::cfd_gen::random_value;
use cfd_relalg::query::{ColRef, OutputCol, ProdCol, SelAtom, SpcQuery};
use cfd_relalg::schema::Catalog;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`gen_spc_view`].
#[derive(Clone, Debug)]
pub struct ViewGenConfig {
    /// Number of projection attributes (`|Y|`).
    pub y: usize,
    /// Number of selection conjuncts (`|F|`).
    pub f: usize,
    /// Number of relations in the Cartesian product (`|Ec|`).
    pub ec: usize,
    /// Constant range for `A = 'a'` conjuncts (paper: 100000).
    pub const_range: i64,
}

impl Default for ViewGenConfig {
    fn default() -> Self {
        ViewGenConfig {
            y: 25,
            f: 10,
            ec: 4,
            const_range: 100_000,
        }
    }
}

/// Generate a random SPC view over `catalog`.
pub fn gen_spc_view(catalog: &Catalog, cfg: &ViewGenConfig, rng: &mut impl Rng) -> SpcQuery {
    assert!(cfg.ec > 0 && !catalog.is_empty());
    // Ec: |Ec| relations drawn with replacement (renaming keeps copies apart).
    let rel_count = catalog.len();
    let atoms: Vec<_> = (0..cfg.ec)
        .map(|_| cfd_relalg::schema::RelId(rng.gen_range(0..rel_count)))
        .collect();
    // All product columns.
    let mut columns: Vec<ProdCol> = Vec::new();
    for (j, rel) in atoms.iter().enumerate() {
        for k in 0..catalog.schema(*rel).arity() {
            columns.push(ProdCol::new(j, k));
        }
    }
    // F: |F| conjuncts, mixing A = B and A = 'a' evenly. For A = B we only
    // equate columns of identical domains (the paper's generator implicitly
    // does the same — all its attributes share one domain).
    let mut selection = Vec::with_capacity(cfg.f);
    let mut guard = 0;
    while selection.len() < cfg.f && guard < cfg.f * 100 {
        guard += 1;
        let a = columns[rng.gen_range(0..columns.len())];
        let dom_a = &catalog.schema(atoms[a.atom]).attributes[a.attr].domain;
        if rng.gen_bool(0.5) {
            let b = columns[rng.gen_range(0..columns.len())];
            if a == b {
                continue;
            }
            let dom_b = &catalog.schema(atoms[b.atom]).attributes[b.attr].domain;
            if dom_a != dom_b {
                continue;
            }
            selection.push(SelAtom::Eq(a, b));
        } else {
            selection.push(SelAtom::EqConst(
                a,
                random_value(dom_a, cfg.const_range, rng),
            ));
        }
    }
    // Y: |Y| distinct product columns (clamped to the available width).
    let mut shuffled = columns.clone();
    shuffled.shuffle(rng);
    let y = cfg.y.min(shuffled.len());
    let output = shuffled[..y]
        .iter()
        .enumerate()
        .map(|(i, c)| OutputCol {
            name: format!("y{i}"),
            src: ColRef::Prod(*c),
        })
        .collect();
    SpcQuery {
        atoms,
        constants: vec![],
        selection,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_gen::{gen_schema, SchemaGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, StdRng) {
        let mut rng = StdRng::seed_from_u64(99);
        let catalog = gen_schema(&SchemaGenConfig::default(), &mut rng);
        (catalog, rng)
    }

    #[test]
    fn respects_parameters_and_validates() {
        let (catalog, mut rng) = setup();
        let cfg = ViewGenConfig {
            y: 25,
            f: 10,
            ec: 4,
            const_range: 100_000,
        };
        for _ in 0..10 {
            let q = gen_spc_view(&catalog, &cfg, &mut rng);
            assert_eq!(q.atoms.len(), 4);
            assert_eq!(q.selection.len(), 10);
            assert_eq!(q.output.len(), 25);
            q.validate(&catalog).expect("generated view validates");
        }
    }

    #[test]
    fn y_clamped_to_width() {
        let (catalog, mut rng) = setup();
        let cfg = ViewGenConfig {
            y: 10_000,
            f: 0,
            ec: 1,
            const_range: 10,
        };
        let q = gen_spc_view(&catalog, &cfg, &mut rng);
        assert_eq!(q.output.len(), catalog.schema(q.atoms[0]).arity());
    }

    #[test]
    fn deterministic_under_seed() {
        let (catalog, _) = setup();
        let cfg = ViewGenConfig::default();
        let a = gen_spc_view(&catalog, &cfg, &mut StdRng::seed_from_u64(5));
        let b = gen_spc_view(&catalog, &cfg, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn small_const_range_creates_interaction() {
        // With range [1, 2] two A='a' conjuncts on one column often clash —
        // the generator must still produce a structurally valid query.
        let (catalog, mut rng) = setup();
        let cfg = ViewGenConfig {
            y: 5,
            f: 10,
            ec: 2,
            const_range: 2,
        };
        let q = gen_spc_view(&catalog, &cfg, &mut rng);
        q.validate(&catalog).unwrap();
    }
}
