//! The dependency propagation problem (§3): given source dependencies Σ on
//! a schema R, a view V, and a view CFD φ, decide `Σ |=V φ` — is `V(D)`
//! guaranteed to satisfy φ for *every* `D |= Σ`?
//!
//! The procedure follows the appendix proofs of Theorems 3.1/3.3/3.5:
//!
//! 1. Represent each SPC disjunct of V as a tableau (selection conditions
//!    pre-applied).
//! 2. For a standard view CFD `(X → B, tp)`, and for every pair of
//!    disjuncts `(e_i, e_j)` (including `i = j`), build a chase instance
//!    containing *fresh* copies of both tableaux (the `ρ1`/`ρ2` mappings),
//!    unify the summary columns of `X` across the copies, and bind the
//!    constants of `tp[X]`. An impossible unification means no pair of view
//!    tuples from these disjuncts can match the premise.
//! 3. Chase with Σ. An undefined chase likewise means the premise is
//!    unmatchable in any model of Σ.
//! 4. Otherwise φ is propagated (for this pair) iff the conclusion is
//!    forced: summary `B` cells equal and, for a constant `tp[B]`, bound to
//!    that constant. If not forced, instantiating the remaining variables
//!    with fresh distinct constants yields a **counterexample database**.
//!
//! In the *general setting* (finite-domain attributes present) the same
//! check runs once per instantiation of the finite-domain variables — the
//! coNP procedure of Theorems 3.2/3.3 and Corollary 3.6; `Σ |=V φ` fails
//! iff some instantiation yields a realizable violation.
//!
//! View CFDs of the special forms are handled per §2.1: `(A → B, (x ‖ x))`
//! uses a single tableau copy and asks whether `A = B` is forced on every
//! view tuple; `(A → A, (_ ‖ a))` is the standard machinery (RHS ∈ LHS).

use crate::error::PropError;
use crate::instance_builder::{add_tableau_copy, materialize, FreshPool, TableauCopy};
use cfd_model::chase::{any_ground_instantiation, ChaseInstance};
use cfd_model::{Cfd, SourceCfd};
use cfd_relalg::instance::Database;
use cfd_relalg::query::{SelAtom, SpcuQuery};
use cfd_relalg::schema::Catalog;
use cfd_relalg::tableau::Tableau;
use cfd_relalg::value::Value;
use std::collections::BTreeSet;

/// Which of the paper's two settings the analysis runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Setting {
    /// No finite-domain attributes assumed (PTIME procedures, §3.1/§3.2).
    ///
    /// With finite-domain attributes present, `Propagated` answers remain
    /// sound but `NotPropagated` witnesses may be unrealizable.
    InfiniteDomain,
    /// Finite-domain attributes allowed (coNP procedures; exponential in
    /// the number of finite-domain tableau variables).
    General,
}

impl Setting {
    /// The setting matching a catalog: [`Setting::General`] iff some
    /// attribute has a finite domain.
    pub fn for_catalog(catalog: &Catalog) -> Setting {
        if catalog.has_finite_domain_attr() {
            Setting::General
        } else {
            Setting::InfiniteDomain
        }
    }
}

/// A counterexample to propagation.
#[derive(Clone, Debug)]
pub struct Witness {
    /// A source database with `database |= Σ` whose view violates φ.
    pub database: Database,
}

/// The answer to a propagation question.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// `Σ |=V φ`.
    Propagated,
    /// Not propagated; the witness exhibits the failure.
    NotPropagated(Box<Witness>),
}

impl Verdict {
    /// Is this the positive verdict?
    pub fn is_propagated(&self) -> bool {
        matches!(self, Verdict::Propagated)
    }
}

/// Group source CFDs by relation (the chase's group structure).
pub fn sigma_by_relation(catalog: &Catalog, sigma: &[SourceCfd]) -> Vec<Vec<Cfd>> {
    let mut groups = vec![Vec::new(); catalog.len()];
    for s in sigma {
        groups[s.rel.0].push(s.cfd.clone());
    }
    groups
}

/// All constants appearing in Σ, the view, and φ — reserved so that fresh
/// witness values cannot collide with them.
fn reserved_constants(sigma: &[SourceCfd], view: &SpcuQuery, phi: &Cfd) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    let mut add_cfd = |c: &Cfd| {
        for (_, p) in c.lhs() {
            if let Some(v) = p.as_const() {
                out.insert(v.clone());
            }
        }
        if let Some(v) = c.rhs_pattern().as_const() {
            out.insert(v.clone());
        }
    };
    for s in sigma {
        add_cfd(&s.cfd);
    }
    add_cfd(phi);
    for b in &view.branches {
        for c in &b.constants {
            out.insert(c.value.clone());
        }
        for s in &b.selection {
            if let SelAtom::EqConst(_, v) = s {
                out.insert(v.clone());
            }
        }
    }
    out
}

/// Validate Σ and φ against the catalog and the view schema.
pub fn validate_inputs(
    catalog: &Catalog,
    sigma: &[SourceCfd],
    view: &SpcuQuery,
    phi: Option<&Cfd>,
) -> Result<(), PropError> {
    for s in sigma {
        let schema = catalog.schema(s.rel);
        s.cfd
            .validate_arity(schema.arity())
            .map_err(|_| PropError::SourceCfdOutOfRange {
                relation: schema.name.clone(),
                attr: s.cfd.max_attr(),
                arity: schema.arity(),
            })?;
    }
    if let Some(phi) = phi {
        let arity = view.schema().arity();
        phi.validate_arity(arity)
            .map_err(|_| PropError::ViewCfdOutOfRange {
                attr: phi.max_attr(),
                arity,
            })?;
    }
    Ok(())
}

/// The PTIME special cases of the general setting (Theorem 3.3(a)/(b) and
/// the remark following it): when the source dependencies are plain FDs and
/// the view is a single SPC branch using at most {S, P} or {P, C} (never
/// selection *and* product together, never union), the chase alone is
/// complete even with finite-domain attributes, *provided every finite
/// domain has at least two values* — "the instantiations of finite domain
/// variables are not necessary because each domain has at least two
/// elements: we can simply construct the two tuples with distinct values
/// whenever necessary" (proof of Thm 3.3).
fn general_ptime_case(catalog: &Catalog, sigma: &[SourceCfd], view: &SpcuQuery) -> bool {
    if !sigma.iter().all(|s| s.cfd.is_plain_fd()) {
        return false; // CFD sources: coNP already for S, P, C (Cor 3.6)
    }
    if view.branches.len() != 1 {
        return false;
    }
    let frag = view.branches[0].fragment(catalog);
    if frag.selection && frag.product {
        return false; // SC/SPC: coNP-complete (Thm 3.2 / Thm 3.3)
    }
    // Degenerate singleton domains defeat the "two distinct values" step.
    for (_, schema) in catalog.relations() {
        for a in &schema.attributes {
            if matches!(a.domain.cardinality(), Some(n) if n < 2) {
                return false;
            }
        }
    }
    true
}

/// Decide `Σ |=V φ`.
///
/// Runs in polynomial time for [`Setting::InfiniteDomain`] (Thms 3.1/3.5)
/// and exponential time in the number of finite-domain tableau variables for
/// [`Setting::General`] (the coNP procedures of Thm 3.3 / Cor 3.6) — except
/// in the PTIME sub-cases of Thm 3.3(a)/(b), which are detected and routed
/// to the chase-only procedure.
pub fn propagates(
    catalog: &Catalog,
    sigma: &[SourceCfd],
    view: &SpcuQuery,
    phi: &Cfd,
    setting: Setting,
) -> Result<Verdict, PropError> {
    validate_inputs(catalog, sigma, view, Some(phi))?;
    let setting = match setting {
        Setting::General if general_ptime_case(catalog, sigma, view) => Setting::InfiniteDomain,
        s => s,
    };
    let groups = sigma_by_relation(catalog, sigma);
    let tableaux: Vec<Option<Tableau>> = view
        .branches
        .iter()
        .map(|b| Tableau::from_spc(b, catalog))
        .collect();
    let reserved = reserved_constants(sigma, view, phi);

    if let Some((a, b)) = phi.as_attr_eq() {
        // Single-copy check per disjunct: is t[A] = t[B] forced on every
        // view tuple?
        for t in tableaux.iter().flatten() {
            let mut inst = ChaseInstance::new();
            let copy = add_tableau_copy(&mut inst, t);
            if inst.chase(&groups).is_err() {
                continue; // this disjunct is necessarily empty
            }
            let violable = |trial: &mut ChaseInstance| -> bool {
                !trial.uf.equal(copy.summary[a], copy.summary[b])
            };
            if let Some(w) =
                find_violation(&mut inst, &groups, catalog, &reserved, setting, violable)
            {
                return Ok(Verdict::NotPropagated(Box::new(w)));
            }
        }
        return Ok(Verdict::Propagated);
    }

    // Standard CFD: all unordered pairs of disjuncts, including identical.
    for i in 0..tableaux.len() {
        let Some(ti) = &tableaux[i] else { continue };
        for tj in tableaux[i..].iter().flatten() {
            let mut inst = ChaseInstance::new();
            let c1 = add_tableau_copy(&mut inst, ti);
            let c2 = add_tableau_copy(&mut inst, tj);
            if unify_premise(&mut inst, &c1, &c2, phi).is_err() {
                continue; // no pair from these disjuncts matches tp[X]
            }
            if inst.chase(&groups).is_err() {
                continue; // premise unmatchable in any model of Σ
            }
            let b = phi.rhs_attr();
            let want = phi.rhs_pattern().as_const().cloned();
            let (n1, n2) = (c1.summary[b], c2.summary[b]);
            let violable = move |trial: &mut ChaseInstance| -> bool {
                if !trial.uf.equal(n1, n2) {
                    return true;
                }
                match &want {
                    None => false,
                    Some(w) => trial.uf.binding(n1).as_ref() != Some(w),
                }
            };
            if let Some(w) =
                find_violation(&mut inst, &groups, catalog, &reserved, setting, violable)
            {
                return Ok(Verdict::NotPropagated(Box::new(w)));
            }
        }
    }
    Ok(Verdict::Propagated)
}

/// Unify the premise of `phi` across the two summary rows; `Err` means the
/// premise cannot be matched by tuples from these disjuncts.
fn unify_premise(
    inst: &mut ChaseInstance,
    c1: &TableauCopy,
    c2: &TableauCopy,
    phi: &Cfd,
) -> Result<(), ()> {
    for (a, pat) in phi.lhs() {
        inst.uf
            .union(c1.summary[*a], c2.summary[*a])
            .map_err(|_| ())?;
        if let Some(v) = pat.as_const() {
            inst.uf.bind(c1.summary[*a], v.clone()).map_err(|_| ())?;
        }
    }
    Ok(())
}

/// Search for a realizable violation of the (already chased, defined)
/// instance, per setting; on success, materialize the counterexample.
fn find_violation(
    inst: &mut ChaseInstance,
    groups: &[Vec<Cfd>],
    catalog: &Catalog,
    reserved: &BTreeSet<Value>,
    setting: Setting,
    mut violable: impl FnMut(&mut ChaseInstance) -> bool,
) -> Option<Witness> {
    match setting {
        Setting::InfiniteDomain => {
            if violable(inst) {
                let mut pool = FreshPool::avoiding(reserved.iter().cloned());
                let database = materialize(inst, catalog, &mut pool);
                Some(Witness { database })
            } else {
                None
            }
        }
        Setting::General => {
            let mut found: Option<Witness> = None;
            any_ground_instantiation(inst, groups, &mut |trial| {
                if violable(trial) {
                    let mut pool = FreshPool::avoiding(reserved.iter().cloned());
                    let database = materialize(trial, catalog, &mut pool);
                    found = Some(Witness { database });
                    true
                } else {
                    false
                }
            });
            found
        }
    }
}

/// Convenience: decide with the setting inferred from the catalog.
pub fn propagates_auto(
    catalog: &Catalog,
    sigma: &[SourceCfd],
    view: &SpcuQuery,
    phi: &Cfd,
) -> Result<Verdict, PropError> {
    propagates(catalog, sigma, view, phi, Setting::for_catalog(catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfd_model::pattern::Pattern;
    use cfd_model::satisfy;
    use cfd_relalg::eval::eval_spcu;
    use cfd_relalg::query::{RaCond, RaExpr};
    use cfd_relalg::schema::{Attribute, RelId, RelationSchema};
    use cfd_relalg::DomainKind;

    fn catalog_two_rels() -> (Catalog, RelId, RelId) {
        let mut c = Catalog::new();
        let mk = |name: &str, attrs: &[&str]| {
            RelationSchema::new(
                name,
                attrs
                    .iter()
                    .map(|a| Attribute::new(*a, DomainKind::Int))
                    .collect(),
            )
            .unwrap()
        };
        let r1 = c.add(mk("R1", &["A", "B", "C"])).unwrap();
        let r2 = c.add(mk("R2", &["D", "E", "F"])).unwrap();
        (c, r1, r2)
    }

    /// Assert the witness really is a counterexample: satisfies Σ, and the
    /// view violates φ.
    fn assert_valid_witness(
        catalog: &Catalog,
        sigma: &[SourceCfd],
        view: &SpcuQuery,
        phi: &Cfd,
        w: &Witness,
    ) {
        w.database
            .validate(catalog)
            .expect("witness conforms to catalog");
        for s in sigma {
            assert!(
                satisfy::satisfies(w.database.relation(s.rel), &s.cfd),
                "witness violates source CFD {}",
                s.cfd
            );
        }
        let v = eval_spcu(view, catalog, &w.database);
        assert!(
            !satisfy::satisfies(&v, phi),
            "witness view does not violate {}",
            phi
        );
    }

    #[test]
    fn fd_propagates_through_projection_keeping_attrs() {
        let (c, r1, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .project(&["A", "B"])
            .normalize(&c)
            .unwrap();
        let sigma = vec![SourceCfd::new(r1, Cfd::fd(&[0], 1).unwrap())];
        let phi = Cfd::fd(&[0], 1).unwrap(); // A → B on the view
        assert!(propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());
    }

    #[test]
    fn fd_not_propagated_without_source_fd() {
        let (c, _, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .project(&["A", "B"])
            .normalize(&c)
            .unwrap();
        let phi = Cfd::fd(&[0], 1).unwrap();
        let v = propagates(&c, &[], &view, &phi, Setting::InfiniteDomain).unwrap();
        match v {
            Verdict::NotPropagated(w) => assert_valid_witness(&c, &[], &view, &phi, &w),
            Verdict::Propagated => panic!("expected counterexample"),
        }
    }

    #[test]
    fn transitive_fd_through_dropped_attribute() {
        // A → C, C → B on R1; view projects {A, B}: A → B propagated.
        let (c, r1, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .project(&["A", "B"])
            .normalize(&c)
            .unwrap();
        let sigma = vec![
            SourceCfd::new(r1, Cfd::fd(&[0], 2).unwrap()),
            SourceCfd::new(r1, Cfd::fd(&[2], 1).unwrap()),
        ];
        let phi = Cfd::fd(&[0], 1).unwrap();
        assert!(propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());
    }

    #[test]
    fn selection_makes_fd_conditional() {
        // Source FD holds only under the selection's scope: the view
        // σ(A = 5)(R1) keeps B → C iff R1 satisfies it on A=5 tuples; with
        // no source dependency the CFD ([B] → C, (_ ‖ _)) fails but the
        // *conditional* view is still constrained by source FD B → C.
        let (c, r1, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .select(vec![RaCond::EqConst("A".into(), Value::int(5))])
            .normalize(&c)
            .unwrap();
        let sigma = vec![SourceCfd::new(r1, Cfd::fd(&[1], 2).unwrap())];
        let phi = Cfd::fd(&[1], 2).unwrap();
        assert!(propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());
        // and the selection constant itself is propagated: (A → A, (_ ‖ 5))
        let const_a = Cfd::const_col(0, 5i64);
        assert!(
            propagates(&c, &sigma, &view, &const_a, Setting::InfiniteDomain)
                .unwrap()
                .is_propagated()
        );
    }

    #[test]
    fn union_breaks_fd_but_keeps_conditional_version() {
        // Example 1.1 in miniature: V = (R1 × {CC:44}) ∪ (R2-as-R1 × {CC:1});
        // zip → street holds on R1 only; on the view it survives only with
        // the CC = 44 condition.
        let (c, r1, _r2) = catalog_two_rels();
        let q1 = RaExpr::rel("R1").with_const("CC", Value::int(44), DomainKind::Int);
        let q2 = RaExpr::rel("R2")
            .rename(&[("D", "A"), ("E", "B"), ("F", "C")])
            .with_const("CC", Value::int(1), DomainKind::Int);
        let view = q1.union(q2).normalize(&c).unwrap();
        assert_eq!(view.schema().names(), vec!["A", "B", "C", "CC"]);
        let sigma = vec![SourceCfd::new(r1, Cfd::fd(&[0], 1).unwrap())]; // A → B on R1 only

        // plain FD A → B on the view: NOT propagated (R2 tuples unconstrained)
        let fd = Cfd::fd(&[0], 1).unwrap();
        let verdict = propagates(&c, &sigma, &view, &fd, Setting::InfiniteDomain).unwrap();
        match verdict {
            Verdict::NotPropagated(w) => assert_valid_witness(&c, &sigma, &view, &fd, &w),
            Verdict::Propagated => panic!("plain FD should fail across the union"),
        }

        // CFD ([CC, A] → B, (44, _ ‖ _)): propagated
        let cfd = Cfd::new(
            vec![(3, Pattern::cst(44)), (0, Pattern::Wild)],
            1,
            Pattern::Wild,
        )
        .unwrap();
        assert!(propagates(&c, &sigma, &view, &cfd, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());

        // and with the wrong country code it fails
        let wrong = Cfd::new(
            vec![(3, Pattern::cst(1)), (0, Pattern::Wild)],
            1,
            Pattern::Wild,
        )
        .unwrap();
        let verdict = propagates(&c, &sigma, &view, &wrong, Setting::InfiniteDomain).unwrap();
        match verdict {
            Verdict::NotPropagated(w) => assert_valid_witness(&c, &sigma, &view, &wrong, &w),
            Verdict::Propagated => panic!("CC=1 branch is unconstrained"),
        }
    }

    #[test]
    fn attr_eq_propagated_from_selection() {
        let (c, _, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .select(vec![RaCond::Eq("A".into(), "B".into())])
            .normalize(&c)
            .unwrap();
        let phi = Cfd::attr_eq(0, 1).unwrap();
        assert!(propagates(&c, &[], &view, &phi, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());
        let not = Cfd::attr_eq(0, 2).unwrap();
        let verdict = propagates(&c, &[], &view, &not, Setting::InfiniteDomain).unwrap();
        match verdict {
            Verdict::NotPropagated(w) => assert_valid_witness(&c, &[], &view, &not, &w),
            Verdict::Propagated => panic!("A = C not enforced"),
        }
    }

    #[test]
    fn join_transfers_dependency_across_relations() {
        // V = π_{A,E}(σ_{C=D}(R1 × R2)); Σ: A → C on R1, D → E on R2.
        // Then A → E on the view.
        let (c, r1, r2) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .product(RaExpr::rel("R2"))
            .select(vec![RaCond::Eq("C".into(), "D".into())])
            .project(&["A", "E"])
            .normalize(&c)
            .unwrap();
        let sigma = vec![
            SourceCfd::new(r1, Cfd::fd(&[0], 2).unwrap()),
            SourceCfd::new(r2, Cfd::fd(&[0], 1).unwrap()),
        ];
        let phi = Cfd::fd(&[0], 1).unwrap();
        assert!(propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
            .unwrap()
            .is_propagated());
        // dropping either source FD breaks it
        for kept in &sigma {
            let partial = vec![kept.clone()];
            let verdict = propagates(&c, &partial, &view, &phi, Setting::InfiniteDomain).unwrap();
            match verdict {
                Verdict::NotPropagated(w) => assert_valid_witness(&c, &partial, &view, &phi, &w),
                Verdict::Propagated => panic!("join FD should need both source FDs"),
            }
        }
    }

    #[test]
    fn finite_domain_requires_general_setting() {
        // R(A: bool, B: int) with Σ = {([A] → B, (true ‖ 1)),
        // ([A] → B, (false ‖ 1))}; view = identity. (B → B, (_ ‖ 1)) is
        // propagated only by case analysis — the infinite-domain chase
        // misses it, the general setting finds it.
        let mut c = Catalog::new();
        let r = c
            .add(
                RelationSchema::new(
                    "R",
                    vec![
                        Attribute::new("A", DomainKind::Bool),
                        Attribute::new("B", DomainKind::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let view = RaExpr::rel("R").normalize(&c).unwrap();
        let sigma = vec![
            SourceCfd::new(
                r,
                Cfd::new(
                    vec![(0, Pattern::cst(Value::Bool(true)))],
                    1,
                    Pattern::cst(1),
                )
                .unwrap(),
            ),
            SourceCfd::new(
                r,
                Cfd::new(
                    vec![(0, Pattern::cst(Value::Bool(false)))],
                    1,
                    Pattern::cst(1),
                )
                .unwrap(),
            ),
        ];
        let phi = Cfd::const_col(1, 1i64);
        assert!(
            !propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
                .unwrap()
                .is_propagated(),
            "chase alone cannot do the case split"
        );
        assert!(propagates(&c, &sigma, &view, &phi, Setting::General)
            .unwrap()
            .is_propagated());
        assert_eq!(Setting::for_catalog(&c), Setting::General);
        // the auto entry point picks the right setting
        assert!(propagates_auto(&c, &sigma, &view, &phi)
            .unwrap()
            .is_propagated());
    }

    #[test]
    fn general_setting_witnesses_are_valid() {
        let mut c = Catalog::new();
        let _ = c
            .add(
                RelationSchema::new(
                    "R",
                    vec![
                        Attribute::new("A", DomainKind::Bool),
                        Attribute::new("B", DomainKind::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let view = RaExpr::rel("R").normalize(&c).unwrap();
        let phi = Cfd::fd(&[0], 1).unwrap();
        let verdict = propagates(&c, &[], &view, &phi, Setting::General).unwrap();
        match verdict {
            Verdict::NotPropagated(w) => assert_valid_witness(&c, &[], &view, &phi, &w),
            Verdict::Propagated => panic!("A → B unconstrained"),
        }
    }

    #[test]
    fn arity_validation() {
        let (c, r1, _) = catalog_two_rels();
        let view = RaExpr::rel("R1").project(&["A"]).normalize(&c).unwrap();
        let phi = Cfd::fd(&[0], 2).unwrap(); // view has arity 1
        assert!(matches!(
            propagates(&c, &[], &view, &phi, Setting::InfiniteDomain),
            Err(PropError::ViewCfdOutOfRange { .. })
        ));
        let bad_sigma = vec![SourceCfd::new(r1, Cfd::fd(&[0], 9).unwrap())];
        let ok_phi = Cfd::new(vec![(0, Pattern::Wild)], 0, Pattern::cst(1)).unwrap();
        assert!(matches!(
            propagates(&c, &bad_sigma, &view, &ok_phi, Setting::InfiniteDomain),
            Err(PropError::SourceCfdOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_view_propagates_everything() {
        // Example 3.1: Σ = {(A → B, (_ ‖ b1))}, V = σ(B = b2)(R), b1 ≠ b2:
        // the view is always empty, so every CFD is propagated.
        let (c, r1, _) = catalog_two_rels();
        let view = RaExpr::rel("R1")
            .select(vec![RaCond::EqConst("B".into(), Value::int(2))])
            .normalize(&c)
            .unwrap();
        let sigma = vec![SourceCfd::new(
            r1,
            Cfd::new(vec![(0, Pattern::Wild)], 1, Pattern::cst(1)).unwrap(),
        )];
        for phi in [
            Cfd::fd(&[0], 2).unwrap(),
            Cfd::const_col(2, 77i64),
            Cfd::attr_eq(0, 2).unwrap(),
        ] {
            assert!(
                propagates(&c, &sigma, &view, &phi, Setting::InfiniteDomain)
                    .unwrap()
                    .is_propagated(),
                "{phi} should hold on an always-empty view"
            );
        }
    }
}
